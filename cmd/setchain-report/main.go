// Command setchain-report renders RESULTS.md — the reproduction's
// fidelity report — from two inputs: the committed paper-scale run
// artifact (ARTIFACT_paper.json, measured vs. the registry's
// spec.Reference values) and a fresh reduced-scale run of the whole
// catalog, whose deterministic tables pin simulation behavior exactly
// like EXPERIMENTS.md pins the catalog's parameters. CI regenerates
// both files and fails on any diff.
//
// Wired to go generate via the directives in the repo root's doc.go:
//
//	go generate ./...
//
// Regenerating the paper-scale artifact (minutes; do this whenever the
// registry's cells change or the regression catalog shows material
// drift — Render refuses stale artifacts):
//
//	go run ./cmd/setchain-report -emit-artifact ARTIFACT_paper.json
//
// Adding a NEW registry entry does not require repaying the whole
// catalog: -entries restricts -emit-artifact to the named entries and
// merges their records into the existing artifact file, leaving every
// other entry's committed record untouched. Provenance stays per-run:
// the artifact-level block keeps describing the last full-catalog run,
// and each merged record carries its own git describe when it differs:
//
//	go run ./cmd/setchain-report -emit-artifact ARTIFACT_paper.json -entries scale_tput,scale_chaos
//
// See DESIGN.md §9 for why the committed report runs at reduced scale
// and why git provenance lives in the artifact rather than the report.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/report"
	"repro/internal/spec"
)

// reportScale is the pinned scale of RESULTS.md's regression catalog:
// small enough that go generate stays interactive, large enough that
// every pipeline stage still sees thousands of elements per cell.
const reportScale = 0.1

// emitScale is -emit-artifact's default: the paper's own workload scale.
const emitScale = 1.0

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	paperPath := flag.String("paper", "ARTIFACT_paper.json", "committed paper-scale artifact to compare against")
	scale := flag.Float64("scale", 0, "workload scale (default 0.1 for the report, 1 for -emit-artifact)")
	emit := flag.String("emit-artifact", "", "run the catalog at -scale and write a run artifact here instead of a report")
	entries := flag.String("entries", "", "with -emit-artifact: run only these comma-separated entries and merge their records into the existing artifact")
	workers := flag.Int("workers", 0, "study executor workers (0 = GOMAXPROCS)")
	flag.Parse()
	harness.SetWorkers(*workers)

	if *emit != "" {
		emitArtifact(*emit, scaleOr(*scale, emitScale), *entries)
		return
	}
	if *entries != "" {
		fatalf("-entries only applies to -emit-artifact")
	}

	paper, err := report.ReadFile(*paperPath)
	if err != nil {
		fatalf("%v\n(run `go run ./cmd/setchain-report -emit-artifact %s` to create it)", err, *paperPath)
	}
	// Catch a stale artifact before paying for the reduced-scale catalog
	// run; Render re-checks, but by then the sweep is sunk cost.
	if err := report.ValidateAgainst(spec.All(), paper); err != nil {
		fatalf("%v", err)
	}
	reduced, err := report.Collect(spec.All(), scaleOr(*scale, reportScale))
	if err != nil {
		fatalf("run catalog: %v", err)
	}
	doc, err := report.Render(spec.All(), paper, reduced, report.Options{
		GeneratedBy:       "cmd/setchain-report",
		PaperArtifactPath: *paperPath,
		ReducedScale:      scaleOr(*scale, reportScale),
	})
	if err != nil {
		fatalf("%v", err)
	}
	if *out == "" {
		fmt.Print(doc)
	} else if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatalf("%v", err)
	}
	// The report records violations, but a safety failure must also stop
	// go generate loudly rather than land as a table cell in a diff.
	if v := harness.InvariantViolations(); v > 0 {
		fatalf("SAFETY: %d scenario(s) violated Setchain invariants (see %s)", v, orStdout(*out))
	}
}

// emitArtifact runs the catalog and writes a run artifact with full
// provenance (the committed-artifact path; wall-clock context belongs
// here, not in the deterministic report). A non-empty entries list
// restricts the run to those catalog entries and merges the fresh
// records into the artifact already at path, so adding a new registry
// entry does not force re-simulating the whole catalog.
func emitArtifact(path string, scale float64, entries string) {
	catalog := spec.All()
	if entries != "" {
		catalog = selectEntries(catalog, entries)
	}
	art, err := report.Collect(catalog, scale)
	if err != nil {
		fatalf("run catalog: %v", err)
	}
	report.StampRuntime(&art.Provenance)
	if entries != "" {
		prev, err := report.ReadFile(path)
		if err != nil {
			fatalf("-entries merges into an existing artifact: %v", err)
		}
		if prev.Provenance.Scale != art.Provenance.Scale {
			fatalf("cannot merge a scale-%g run into a scale-%g artifact",
				art.Provenance.Scale, prev.Provenance.Scale)
		}
		// The merged artifact keeps the previous full run's provenance;
		// the freshly rerun records carry this run's git describe
		// themselves (MergeExperiments).
		art = report.MergeExperiments(prev, art)
	}
	if err := art.WriteFile(path); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("artifact written to %s (%d experiments, %d cells)\n",
		path, len(art.Experiments), art.CellCount())
	if v := harness.InvariantViolations(); v > 0 {
		fatalf("SAFETY: %d scenario(s) violated Setchain invariants", v)
	}
}

// selectEntries resolves a comma-separated entry-name list against the
// catalog, preserving catalog order.
func selectEntries(catalog []spec.Entry, names string) []spec.Entry {
	want := map[string]bool{}
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, ok := spec.Get(name); !ok {
			fatalf("unknown entry %q in -entries (use setchain-bench -list)", name)
		}
		want[name] = true
	}
	var out []spec.Entry
	for _, e := range catalog {
		if want[e.Name] {
			out = append(out, e)
		}
	}
	return out
}

func scaleOr(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

func orStdout(path string) string {
	if path == "" {
		return "output above"
	}
	return path
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "setchain-report: "+format+"\n", args...)
	os.Exit(1)
}
