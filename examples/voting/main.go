// Voting: an e-voting scenario (the paper cites Follow My Vote and
// Chirotonia) on a Hashchain Setchain. Ballots need no order among
// themselves — only set membership and a closing barrier — which is
// exactly the relaxation Setchain exploits for throughput. The election
// closes at an epoch boundary; everything consolidated by then counts.
//
//	go run ./examples/voting
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"repro/setchain"
)

func main() {
	const servers = 7 // tolerates f = 3 Byzantine servers
	net, err := setchain.New(setchain.Config{
		Algorithm:     setchain.Hashchain,
		Servers:       servers,
		CollectorSize: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("election on %d servers (f=%d), ballots are Setchain elements\n",
		net.Servers(), net.F())

	candidates := []string{"alice", "bob", "carol"}
	// 105 voters cast ballots through their nearest server. Ballot payload
	// is "vote/<voter>/<candidate>"; the client signature makes it
	// authenticated, and the_set's grow-only semantics deduplicate.
	votes := map[string]string{}
	var ids []setchain.ElementID
	for voter := 0; voter < 105; voter++ {
		cand := candidates[(voter*7+3)%len(candidates)]
		ballot := fmt.Sprintf("vote/voter-%03d/%s", voter, cand)
		votes[fmt.Sprintf("voter-%03d", voter)] = cand
		id, err := net.Client(voter % servers).Add([]byte(ballot))
		if err != nil {
			log.Fatalf("ballot %d: %v", voter, err)
		}
		ids = append(ids, id)
		if voter%10 == 9 {
			net.Run(200 * time.Millisecond) // ballots trickle in
		}
	}
	if !net.RunUntilSettled(5 * time.Minute) {
		log.Fatalf("election stuck: %d of %d ballots committed", net.Committed(), net.Added())
	}

	// Close the election at the current epoch barrier and tally from ONE
	// server's history, verifying each counted epoch with f+1 proofs.
	closeEpoch := net.EpochCount(0)
	fmt.Printf("election closed at epoch barrier %d (t=%v)\n", closeEpoch, net.Now())

	tally := map[string]int{}
	counted := 0
	for _, ep := range net.History(2) { // any server works; verify anyway
		if ep.Number > closeEpoch {
			break
		}
		// Verify the epoch before counting it: pick any of its elements
		// and confirm via the f+1 epoch-proof rule.
		if len(ep.Elements) == 0 {
			continue
		}
		if _, err := net.Client(0).Confirm(2, ep.Elements[0].ID); err != nil {
			log.Fatalf("epoch %d unverifiable: %v", ep.Number, err)
		}
		for _, e := range ep.Elements {
			parts := strings.Split(string(e.Payload), "/")
			if len(parts) == 3 && parts[0] == "vote" {
				tally[parts[2]]++
				counted++
			}
		}
	}
	fmt.Printf("counted %d verified ballots across %d epochs\n", counted, closeEpoch)
	for _, c := range candidates {
		fmt.Printf("  %-6s %3d votes  %s\n", c, tally[c], strings.Repeat("#", tally[c]/2))
	}
	if counted != len(ids) {
		log.Fatalf("tally mismatch: counted %d of %d ballots", counted, len(ids))
	}

	// Cross-check the tally against an independent server (Consistent-Gets
	// means every correct server yields the same result).
	other := map[string]int{}
	for _, ep := range net.History(5) {
		if ep.Number > closeEpoch {
			break
		}
		for _, e := range ep.Elements {
			parts := strings.Split(string(e.Payload), "/")
			if len(parts) == 3 {
				other[parts[2]]++
			}
		}
	}
	for _, c := range candidates {
		if tally[c] != other[c] {
			log.Fatalf("servers disagree on %s: %d vs %d", c, tally[c], other[c])
		}
	}
	fmt.Println("independent tally from server 5 matches — election result is final")
}
