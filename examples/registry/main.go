// Registry: a digital-credential registry (the paper's motivating use
// case: MIT digital diplomas, government registries) on a Compresschain
// Setchain. Credentials issued by a university are unordered within an
// epoch — only the epoch barrier matters — and any verifier can check a
// credential against a single registry server using f+1 epoch-proofs,
// even when one registry server is Byzantine and serves corrupted proofs.
//
//	go run ./examples/registry
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/setchain"
)

// Credential is the document anchored in the Setchain.
type Credential struct {
	Student string `json:"student"`
	Degree  string `json:"degree"`
	Year    int    `json:"year"`
}

func main() {
	net, err := setchain.New(setchain.Config{
		Algorithm:     setchain.Compresschain,
		Servers:       4,
		CollectorSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Server 3 is Byzantine: it signs garbage epoch hashes. Verification
	// must still succeed via the f+1 = 2 correct proofs rule.
	net.SetByzantine(3, &setchain.Byzantine{CorruptProofs: true})
	fmt.Printf("credential registry: %d servers, f=%d, server 3 Byzantine (corrupt proofs)\n",
		net.Servers(), net.F())

	// The university issues a batch of diplomas through its local server.
	grads := []Credential{
		{"Ada Lovelace", "MSc Computer Science", 2026},
		{"Alan Turing", "PhD Mathematics", 2026},
		{"Grace Hopper", "MSc Applied Physics", 2026},
		{"Barbara Liskov", "PhD Computer Science", 2026},
		{"Tim Berners-Lee", "BSc Engineering", 2026},
	}
	ids := make(map[string]setchain.ElementID)
	for _, c := range grads {
		doc, _ := json.Marshal(c)
		id, err := net.Client(1).Add(doc)
		if err != nil {
			log.Fatalf("issue %s: %v", c.Student, err)
		}
		ids[c.Student] = id
		fmt.Printf("issued: %-16s %s (%d) -> %v\n", c.Student, c.Degree, c.Year, id)
	}

	if !net.RunUntilSettled(3 * time.Minute) {
		log.Fatal("registry did not settle")
	}
	fmt.Printf("\nall %d credentials committed by t=%v\n", len(grads), net.Now())

	// An employer verifies Ada's diploma by querying ONE server — and it
	// can even be the Byzantine one, because the f+1 proof check exposes
	// any tampering with proofs while the correct proofs still verify.
	for _, askServer := range []int{2, 3} {
		epoch, err := net.Client(1).Confirm(askServer, ids["Ada Lovelace"])
		if err != nil {
			log.Fatalf("verify against server %d: %v", askServer, err)
		}
		fmt.Printf("verifier (via server %d): Ada Lovelace's diploma is in epoch %d — VALID\n",
			askServer, epoch)
	}

	// A forged credential that was never issued cannot be confirmed.
	fake := setchain.ElementID{0xde, 0xad}
	if _, err := net.Client(1).Confirm(2, fake); err == nil {
		log.Fatal("forged credential verified?!")
	} else {
		fmt.Printf("forged credential rejected: %v\n", err)
	}

	// Epoch barriers give the registry a revocation-friendly timeline:
	// "issued no later than epoch k" without ordering individual diplomas.
	hist := net.History(0)
	fmt.Printf("\nregistry timeline: %d epochs\n", len(hist))
	for _, ep := range hist {
		if len(ep.Elements) > 0 {
			fmt.Printf("  epoch %d: %d credential(s)\n", ep.Number, len(ep.Elements))
		}
	}
}
