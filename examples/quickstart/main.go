// Quickstart: spin up a 4-server Hashchain Setchain, add an element through
// one server, and verify — against a different server, trusting only the
// PKI — that it is committed with f+1 epoch-proofs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/setchain"
)

func main() {
	// Four servers tolerate f = 1 Byzantine server at the Setchain layer;
	// the deployment uses real ed25519 signatures and SHA-512 hashing on a
	// simulated cluster network with deterministic virtual time.
	net, err := setchain.New(setchain.Config{
		Algorithm:     setchain.Hashchain,
		Servers:       4,
		CollectorSize: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("started %d-server Hashchain Setchain (f=%d)\n", net.Servers(), net.F())

	// A client adds an element through server 0 (a single add request, as
	// the paper's epoch-proofs make safe).
	id, err := net.Client(0).Add([]byte("hello setchain"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("added element %v via server 0 at t=%v\n", id, net.Now())

	// Let the pipeline run: collector flush -> hash-batch on the ledger ->
	// peers recover & co-sign the batch -> f+1 signatures consolidate the
	// epoch -> servers publish epoch-proofs.
	if !net.RunUntilSettled(2 * time.Minute) {
		log.Fatal("element did not settle in time")
	}

	// Verify against server 2 — a server the client never talked to. The
	// client recomputes the epoch hash and checks f+1 signatures, so even a
	// Byzantine responder could not fake this.
	epoch, err := net.Client(0).Confirm(2, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("element committed in epoch %d (confirmed with %d+ epoch-proofs) at t=%v\n",
		epoch, net.F()+1, net.Now())

	// Every server reports the same epoch content (Consistent-Gets).
	for srv := 0; srv < net.Servers(); srv++ {
		ep := net.Client(0).Find(srv, id)
		fmt.Printf("  server %d: epoch %d holds %d element(s)\n", srv, ep.Number, len(ep.Elements))
	}
}
