// Byzantine: demonstrates the fault scenarios Hashchain is built to
// survive. One of four servers misbehaves in escalating ways — injecting
// invalid elements, refusing to serve batch contents, and corrupting
// epoch-proofs — while honest clients' elements keep committing and the
// forged ones never do.
//
//	go run ./examples/byzantine
package main

import (
	"fmt"
	"log"
	"time"

	"repro/setchain"
)

func main() {
	net, err := setchain.New(setchain.Config{
		Algorithm:     setchain.Hashchain,
		Servers:       4,
		CollectorSize: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	const evil = 3
	net.SetByzantine(evil, &setchain.Byzantine{
		// Stuff every batch with invalid elements (no valid client
		// signature). Correct servers must filter them in FinalizeBlock.
		InjectBogusElements: 3,
		// Refuse to serve batch contents to anyone: this server's batches
		// can never be validated, so they never gather f+1 signatures and
		// never consolidate into epochs.
		RefuseServe: func(to int, hash []byte) bool { return true },
		// Sign wrong epoch hashes: its epoch-proofs are rejected by
		// servers and clients alike.
		CorruptProofs: true,
	})
	fmt.Printf("4-server Hashchain, server %d fully Byzantine (f=%d tolerated)\n", evil, net.F())

	// Honest clients use the three correct servers.
	var ids []setchain.ElementID
	for i := 0; i < 18; i++ {
		id, err := net.Client(i % 3).Add([]byte(fmt.Sprintf("honest-tx-%02d", i)))
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		net.Run(150 * time.Millisecond)
	}
	net.Run(90 * time.Second)

	// Every honest element is committed and verifiable through any correct
	// server with f+1 valid proofs — the Byzantine server's corrupt proofs
	// simply don't count.
	committed := 0
	for _, id := range ids {
		if _, err := net.Client(0).Confirm(1, id); err == nil {
			committed++
		}
	}
	fmt.Printf("honest elements committed & verified: %d/%d\n", committed, len(ids))
	if committed != len(ids) {
		log.Fatal("Byzantine server prevented honest progress")
	}

	// No forged element leaked into any correct server's history.
	leaked := 0
	for srv := 0; srv < 3; srv++ {
		for _, ep := range net.History(srv) {
			for _, e := range ep.Elements {
				if len(e.Payload) < 6 || string(e.Payload[:6]) != "honest" {
					leaked++
				}
			}
		}
	}
	fmt.Printf("forged elements in correct servers' epochs: %d\n", leaked)
	if leaked > 0 {
		log.Fatal("invalid elements leaked into history")
	}

	// Histories of the three correct servers are identical epoch by epoch
	// (Consistent-Gets), despite the ongoing attack.
	ref := net.History(0)
	for srv := 1; srv < 3; srv++ {
		h := net.History(srv)
		n := len(ref)
		if len(h) < n {
			n = len(h)
		}
		for k := 0; k < n; k++ {
			if len(ref[k].Elements) != len(h[k].Elements) {
				log.Fatalf("server %d diverges at epoch %d", srv, k+1)
			}
		}
	}
	fmt.Println("correct servers agree on every epoch — all Setchain properties held under attack")
}
