// Token: the paper's Appendix G extension in action — a fully functional
// blockchain built on the Setchain. Transfers are validated optimistically
// in parallel while epochs form; once an epoch consolidates, its
// transactions execute sequentially at their final positions and
// semantically invalid ones (overdrafts) are marked void. Every server
// replays the same history to the same balances.
//
//	go run ./examples/token
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/execution"
	"repro/setchain"
)

func main() {
	net, err := setchain.New(setchain.Config{
		Algorithm:     setchain.Hashchain,
		Servers:       4,
		CollectorSize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	genesis := map[string]uint64{"alice": 100, "bob": 50}
	fmt.Printf("token chain on a %d-server Setchain; genesis: alice=100 bob=50\n", net.Servers())

	// Submit transfers, including a deliberate overdraft: it will be
	// ordered into an epoch but voided at execution.
	transfers := []execution.Transfer{
		{From: "alice", To: "bob", Amount: 30},   // ok
		{From: "bob", To: "carol", Amount: 70},   // ok only if the previous one lands first
		{From: "carol", To: "alice", Amount: 65}, // ok after the above
		{From: "alice", To: "bob", Amount: 9999}, // overdraft -> void
		{From: "bob", To: "carol", Amount: 10},   // ok
	}
	for i, tr := range transfers {
		if _, err := net.Client(i % 4).Add(execution.EncodeTransfer(tr)); err != nil {
			log.Fatalf("transfer %d: %v", i, err)
		}
		net.Run(600 * time.Millisecond) // keep the intended order across epochs
	}
	if !net.RunUntilSettled(3 * time.Minute) {
		log.Fatal("transfers did not settle")
	}

	// Optimistic validation (Appendix G step 1): each ordered transaction
	// is checked in isolation, in parallel, ignoring balances.
	for _, ep := range net.History(0) {
		valid := execution.ValidateParallel(ep.Elements, 0)
		for i, ok := range valid {
			if !ok {
				log.Fatalf("epoch %d element %d failed optimistic validation", ep.Number, i)
			}
		}
	}

	// Each server independently executes its consolidated history.
	states := make([]*execution.State, net.Servers())
	for srv := 0; srv < net.Servers(); srv++ {
		st, err := execution.Replay(genesis, net.History(srv))
		if err != nil {
			log.Fatalf("server %d replay: %v", srv, err)
		}
		states[srv] = st
	}
	// Determinism across servers: identical balances and void sets.
	for srv := 1; srv < len(states); srv++ {
		if !states[0].Equal(states[srv]) {
			log.Fatalf("server %d state diverged", srv)
		}
	}

	st := states[0]
	executed, voided, rejected := st.Counters()
	fmt.Printf("executed=%d voided=%d rejected=%d across %d epochs\n",
		executed, voided, rejected, st.EpochsExecuted())
	for _, acct := range []string{"alice", "bob", "carol"} {
		fmt.Printf("  %-6s balance %d\n", acct, st.Balance(acct))
	}
	if st.TotalSupply() != 150 {
		log.Fatalf("supply not conserved: %d", st.TotalSupply())
	}
	if voided != 1 {
		log.Fatalf("expected exactly the overdraft voided, got %d", voided)
	}
	fmt.Println("supply conserved, overdraft voided, all servers agree — blockchain semantics on Setchain")
}
