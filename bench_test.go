package repro

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper, plus ablation benches for the design decisions in DESIGN.md §5.
//
// Each iteration runs the corresponding experiment at a reduced scale
// (BENCH_SCALE, default 0.1) so `go test -bench=.` completes in minutes;
// cmd/setchain-bench runs the same studies at paper scale. Benchmarks
// report the paper's own metrics through b.ReportMetric — committed
// elements per virtual second (el/s), efficiency, commit latency — in
// addition to wall-clock ns/op.

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/metrics"
)

// metric converts a human label into a ReportMetric-safe unit string
// (no whitespace allowed).
func metric(label, suffix string) string {
	return strings.ReplaceAll(label, " ", "_") + suffix
}

func benchScale() float64 {
	if v := os.Getenv("BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.1
}

// BenchmarkTable1Grid exercises one cell of Table 1's parameter grid per
// combination class (the grid itself is configuration; the bench proves
// every combination actually runs).
func BenchmarkTable1Grid(b *testing.B) {
	g := harness.PaperGrid()
	for i := 0; i < b.N; i++ {
		res := harness.Run(harness.Scenario{
			Spec:         harness.SpecHash100,
			Rate:         g.SendingRates[len(g.SendingRates)-1], // 500 el/s
			Servers:      g.ServerCounts[0],                     // 4
			NetworkDelay: g.NetworkDelays[1],                    // 30 ms
			SendFor:      10 * time.Second,
			Horizon:      40 * time.Second,
		})
		b.ReportMetric(res.Eff100, "efficiency@2x")
	}
}

// BenchmarkTable2Throughput regenerates Table 2: average throughput up to
// the end of sending for Fig. 1's three panels.
func BenchmarkTable2Throughput(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		panels := harness.Fig1Panels()
		// Panel left carries the headline comparison (V=171, C=996,
		// H=4183 in the paper).
		results := harness.RunFig1Panel(panels[0], scale)
		for _, res := range results {
			b.ReportMetric(res.AvgTput, metric(res.Scenario.Spec.Label(), "_el/s"))
		}
	}
}

// BenchmarkFig1Throughput regenerates Fig. 1's throughput-over-time curves
// (right panel: 10,000 el/s, c=500).
func BenchmarkFig1Throughput(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		panels := harness.Fig1Panels()
		results := harness.RunFig1Panel(panels[2], scale)
		for _, res := range results {
			b.ReportMetric(res.AvgTput, metric(res.Scenario.Spec.Label(), "_el/s"))
			b.ReportMetric(float64(len(res.Series)), "series_points")
		}
	}
}

// BenchmarkFig2Limits regenerates Fig. 2 (left): the Hashchain ceiling with
// hash-reversal on versus the Light variant (paper: 20,061 vs 133,882 el/s
// averaged to 50 s at scale 1).
func BenchmarkFig2Limits(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		results := harness.RunLimitStudy(scale)
		for _, lr := range results {
			b.ReportMetric(lr.Result.AvgTput, metric(lr.Label, "_el/s"))
		}
	}
}

// BenchmarkFig2Analytical regenerates Fig. 2 (right): the block-size sweep
// of the analytical model.
func BenchmarkFig2Analytical(b *testing.B) {
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		sweep := analysis.BlockSizeSweep()
		last = sweep[len(sweep)-1].Hashchain
	}
	b.ReportMetric(last, "hashchain@128MB_el/s")
}

// BenchmarkFig3Efficiency regenerates Fig. 3a (efficiency vs sending rate);
// Figs. 3b/3c use the same machinery with servers/delay varied (covered at
// full scale by cmd/setchain-bench).
func BenchmarkFig3Efficiency(b *testing.B) {
	scale := benchScale() / 2 // 20 runs: keep each small
	for i := 0; i < b.N; i++ {
		cells := harness.RunEfficiencyVsRate(scale)
		for _, c := range cells {
			if c.Param == "10000 el/s" {
				b.ReportMetric(c.Result.Eff50, metric(c.Spec.Label(), "_eff@send-end"))
			}
		}
	}
}

// BenchmarkFig4Latency regenerates Fig. 4: five-stage latency CDFs at
// 1,250 el/s, reporting median and p95 commit (finality) latency — the
// paper's "finality below 4 seconds" claim.
func BenchmarkFig4Latency(b *testing.B) {
	scale := benchScale() * 2 // light workload; afford more elements
	for i := 0; i < b.N; i++ {
		curves := harness.RunLatencyStudy(scale)
		for _, lc := range curves {
			commit := lc.Stages[metrics.StageCommitted]
			b.ReportMetric(metrics.LatencyQuantile(commit, 0.5).Seconds(),
				metric(lc.Spec.Label(), "_p50_commit_s"))
			b.ReportMetric(metrics.LatencyQuantile(commit, 0.95).Seconds(),
				metric(lc.Spec.Label(), "_p95_commit_s"))
		}
	}
}

// BenchmarkFig5CommitTimes regenerates Fig. 5 (Appendix F): commit times of
// the first element and element fractions.
func BenchmarkFig5CommitTimes(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		res := harness.Run(harness.Scenario{
			Spec:  harness.SpecHash500,
			Rate:  10000,
			Scale: scale,
		})
		if t0, ok := res.CommitFrac[0]; ok {
			b.ReportMetric(t0.Seconds(), "first_el_commit_s")
		}
		if t50, ok := res.CommitFrac[50]; ok {
			b.ReportMetric(t50.Seconds(), "50pct_commit_s")
		}
	}
}

// BenchmarkD1Analytical regenerates the Appendix D.1 analytical table.
func BenchmarkD1Analytical(b *testing.B) {
	b.ReportAllocs()
	var tv, th float64
	for i := 0; i < b.N; i++ {
		rows := analysis.D1Table()
		tv = rows[0].Throughput
		th = rows[len(rows)-1].Throughput
	}
	b.ReportMetric(tv, "Tv_el/s")
	b.ReportMetric(th, "Th500_el/s")
}

// --- ablation benches (DESIGN.md §5) ---

// BenchmarkAblationHashReversal (D3) isolates the cost of Hashchain's
// hash-reversal + validation: same rate, with and without.
func BenchmarkAblationHashReversal(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		heavy := harness.Run(harness.Scenario{Spec: harness.SpecHash500, Rate: 40000, Scale: scale})
		light := harness.Run(harness.Scenario{
			Spec: harness.AlgSpec{Alg: core.Hashchain, Collector: 500, Light: true},
			Rate: 40000, Scale: scale,
		})
		b.ReportMetric(heavy.AvgTput, "with_reversal_el/s")
		b.ReportMetric(light.AvgTput, "without_reversal_el/s")
	}
}

// BenchmarkAblationCollectorSize (D4) sweeps the collector size at a fixed
// stressed sending rate for Hashchain.
func BenchmarkAblationCollectorSize(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		for _, c := range []int{50, 100, 250, 500} {
			res := harness.Run(harness.Scenario{
				Spec: harness.AlgSpec{Alg: core.Hashchain, Collector: c},
				Rate: 10000, Scale: scale,
			})
			b.ReportMetric(res.AvgTput, "c="+strconv.Itoa(c)+"_el/s")
		}
	}
}

// BenchmarkAblationModeledVsFull (D2) compares the modeled byte path with
// the full-fidelity path (real ed25519, SHA-512, DEFLATE) on an identical
// small workload; the metric of interest is wall-clock ns/op, showing what
// the modeled mode buys for large sweeps.
func BenchmarkAblationModeledVsFull(b *testing.B) {
	run := func(mode core.Mode) {
		// Direct deployment (not harness.Run) so the mode is selectable.
		benchDeployAndRun(b, mode)
	}
	b.Run("modeled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(core.Modeled)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(core.Full)
		}
	})
}

// BenchmarkAblationProofOverhead (D5) quantifies the epoch-proof ledger
// overhead per algorithm: Vanilla pays n proof transactions per epoch on
// the ledger, Compresschain/Hashchain piggyback proofs inside batches.
func BenchmarkAblationProofOverhead(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		for _, spec := range []harness.AlgSpec{harness.SpecVanilla, harness.SpecCompress100} {
			res := harness.Run(harness.Scenario{Spec: spec, Rate: 500, Scale: scale})
			b.ReportMetric(res.AvgTput, metric(spec.Label(), "_el/s"))
		}
	}
}

// BenchmarkAblationVirtualTime (D1) measures the simulator's speedup: how
// many virtual seconds of cluster time one wall-clock second simulates on
// the Fig. 4 workload.
func BenchmarkAblationVirtualTime(b *testing.B) {
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res := harness.Run(harness.Scenario{Spec: harness.SpecHash100, Rate: 1250, Scale: scale})
		wall := time.Since(start).Seconds()
		virtual := res.Scenario.Horizon.Seconds()
		if wall > 0 {
			b.ReportMetric(virtual/wall, "virtual_s_per_wall_s")
		}
		b.ReportMetric(float64(res.Events), "events")
	}
}
