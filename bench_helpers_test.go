package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ledger"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/setcrypto"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchDeployAndRun executes a small fixed Compresschain workload in the
// given mode (modeled byte accounting vs full crypto + DEFLATE) for the D2
// ablation bench.
func benchDeployAndRun(b *testing.B, mode core.Mode) {
	b.Helper()
	s := sim.New(1)
	const n = 4
	rec := metrics.New(s, metrics.LevelThroughput, n, 1, 0)
	var suite setcrypto.Suite = setcrypto.FastSuite{}
	if mode == core.Full {
		suite = setcrypto.Ed25519Suite{}
	}
	d := core.Deploy(s, n, ledger.Config{
		Net:   netsim.DefaultLANConfig(),
		Suite: suite,
	}, core.Options{
		Algorithm:      core.Compresschain,
		Mode:           mode,
		CollectorLimit: 50,
		F:              1,
	}, rec)
	gen := workload.New(d, rec, workload.Config{
		Rate:         400,
		Duration:     10 * time.Second,
		FullPayloads: mode == core.Full,
	})
	d.Start()
	gen.Start()
	s.RunUntil(30 * time.Second)
	d.Stop()
	if rec.TotalCommitted() == 0 {
		b.Fatal(fmt.Sprintf("mode %v committed nothing", mode))
	}
}
