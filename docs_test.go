package repro

// The top-level docs cross-reference each other heavily, and two of them
// (EXPERIMENTS.md, RESULTS.md) are generated — a renderer change can
// silently rot a link. This test walks every markdown link in the
// committed docs and verifies relative file targets exist and intra-file
// anchors resolve to a heading, so CI catches dead references the same
// way docs-sync catches stale content. External http(s) links are
// skipped: CI must not depend on the network.

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// docFiles are the checked documents; generated ones included.
var docFiles = []string{
	"README.md", "DESIGN.md", "EXPERIMENTS.md", "RESULTS.md",
	"PAPER.md", "CHANGES.md", "examples/specs/README.md",
}

var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocLinks(t *testing.T) {
	for _, doc := range docFiles {
		blob, err := os.ReadFile(doc)
		if err != nil {
			t.Errorf("%s: %v", doc, err)
			continue
		}
		text := string(blob)
		for _, m := range linkRE.FindAllStringSubmatch(stripCodeFences(text), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			if path == "" { // same-file anchor
				if !hasAnchor(text, anchor) {
					t.Errorf("%s: dead anchor link %q", doc, target)
				}
				continue
			}
			resolved := filepath.Join(filepath.Dir(doc), path)
			info, err := os.Stat(resolved)
			if err != nil {
				t.Errorf("%s: dead link %q (%v)", doc, target, err)
				continue
			}
			if anchor != "" && !info.IsDir() {
				dest, err := os.ReadFile(resolved)
				if err != nil {
					t.Errorf("%s: link %q: %v", doc, target, err)
					continue
				}
				if !hasAnchor(string(dest), anchor) {
					t.Errorf("%s: link %q: no heading for anchor #%s in %s",
						doc, target, anchor, path)
				}
			}
		}
	}
}

// hasAnchor reports whether the markdown contains a heading whose
// GitHub-style slug matches the anchor. Fenced code blocks are skipped
// (their # lines are not headings) but inline code in a heading keeps
// its text: GitHub slugs "## `foo` flags" as "foo-flags".
func hasAnchor(text, anchor string) bool {
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == anchor {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-to-anchor rule: lowercase, keep
// letters/digits/hyphens/underscores, map spaces to hyphens, and drop
// punctuation — including the em dashes the generated headings use, so
// "fig1 — Fig. 1" slugs to "fig1--fig-1" exactly as GitHub renders it.
func slugify(heading string) string {
	heading = strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range heading {
		switch {
		case r == ' ':
			b.WriteByte('-')
		case r == '-' || r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		}
	}
	return b.String()
}

// stripCodeFences blanks fenced code blocks and inline code spans so
// sample snippets cannot register links or headings.
func stripCodeFences(text string) string {
	var out []string
	inFence := false
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "```") {
			inFence = !inFence
			out = append(out, "")
			continue
		}
		if inFence {
			out = append(out, "")
			continue
		}
		out = append(out, stripInlineCode(line))
	}
	return strings.Join(out, "\n")
}

func stripInlineCode(line string) string {
	var b strings.Builder
	in := false
	for _, r := range line {
		switch {
		case r == '`':
			in = !in
		case in:
			b.WriteRune(' ')
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Pin the GitHub slug rules the checker approximates: punctuation (em
// dashes, dots, backticks) drops out, spaces become hyphens, inline-code
// text in headings is kept.
func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"fig1 — Fig. 1":      "fig1--fig-1",
		"`setchain` flags":   "setchain-flags",
		"Fault injection &_": "fault-injection-_",
		"  Results  ":        "results",
	}
	for heading, want := range cases {
		if got := slugify(heading); got != want {
			t.Errorf("slugify(%q) = %q, want %q", heading, got, want)
		}
	}
	doc := "```\n# not a heading\n```\n## `real` heading\n"
	if hasAnchor(doc, "not-a-heading") {
		t.Error("fenced # line must not register as a heading")
	}
	if !hasAnchor(doc, "real-heading") {
		t.Error("inline code in a heading must keep its text in the slug")
	}
}

// Every doc this test checks must exist — a rename that forgets to
// update docFiles should fail loudly, not shrink coverage silently.
func TestDocFilesExist(t *testing.T) {
	for _, doc := range docFiles {
		if _, err := os.Stat(doc); err != nil {
			t.Error(fmt.Errorf("docFiles entry unreadable: %w", err))
		}
	}
}
